// Residency benchmark: repeated 8-bit MLP inference with weights pinned
// resident (engine/residency.hpp) vs the re-poke path that loads the same
// weight rows on every forward.
//
// Two identical memories run the same forward sequence: one through a
// plain Mlp (weights re-poked per op, the pre-residency behavior), one
// through an Mlp that pinned its weights at construction. Outputs must be
// bit-identical forward for forward; the headline metric is the modeled
// operand-load cycle win -- re-poking pays 2 row writes per layer per op
// every forward, the resident net pays the weight side exactly once (the
// materializing write of the first forward) and only re-loads activations
// after that. A serve::Server route over a 2-memory pool is spot-checked
// for the same bit-identity with handle-homed placement.
//
// Results land in BENCH_residency.json (schema bpim.residency.v1). The
// bench exits non-zero when the resident net fails to reach 1.5x fewer
// modeled load cycles over the run, or when any output diverges -- the
// acceptance gate CI smoke runs check.
//
// Usage: residency_bench [--forwards N] [--smoke] [--out <path>]
//   --forwards   inference passes per net   (default 16; smoke 8)
//   --smoke      CI-sized run; same JSON shape

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "app/mlp.hpp"
#include "common/json_writer.hpp"
#include "obs_flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"
#include "serve/memory_pool.hpp"
#include "serve/server.hpp"

using namespace bpim;

namespace {

constexpr std::size_t kMacros = 8;

struct Options {
  std::size_t forwards = 16;
  bool smoke = false;
  std::string out_path = "BENCH_residency.json";
};

/// 64-32-16-10 at uniform 8 bit: 58 one-layer weight handles, all of which
/// fit a 64-row-pair array at once, so the bench shows the steady state
/// (eviction churn is covered by tests/test_residency.cpp).
struct NetShape {
  std::vector<std::size_t> sizes{64, 32, 16, 10};
  std::vector<unsigned> bits{8, 8, 8};
};

std::vector<app::MlpLayerSpec> make_specs(const NetShape& shape) {
  Rng rng(0x9E51D);
  std::vector<app::MlpLayerSpec> specs;
  for (std::size_t l = 0; l + 1 < shape.sizes.size(); ++l) {
    app::MlpLayerSpec spec;
    spec.bits = shape.bits[l];
    spec.weights.assign(shape.sizes[l + 1], std::vector<double>(shape.sizes[l]));
    for (auto& row : spec.weights)
      for (auto& w : row) w = rng.uniform();
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<std::vector<double>> make_inputs(std::size_t forwards, std::size_t n) {
  Rng rng(0x1D0B5);
  std::vector<std::vector<double>> xs(forwards, std::vector<double>(n));
  for (auto& x : xs)
    for (auto& v : x) v = rng.uniform();
  return xs;
}

macro::MemoryConfig node_memory() {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = kMacros;
  return cfg;
}

struct ModeTotals {
  std::uint64_t load_cycles = 0;
  std::uint64_t load_cycles_saved = 0;
  std::uint64_t pipelined_cycles = 0;
  std::uint64_t compute_cycles = 0;
};

void accumulate(ModeTotals& t, const app::LayerStats& s) {
  t.load_cycles += s.load_cycles;
  t.load_cycles_saved += s.load_cycles_saved;
  t.pipelined_cycles += s.pipelined_cycles;
  t.compute_cycles += s.cycles;
}

void require_identical(const std::vector<double>& a, const std::vector<double>& b,
                       const char* what, std::size_t forward) {
  if (a == b) return;  // bit-identical doubles, not epsilon-close
  std::cerr << "FATAL: " << what << " diverged from the re-poke outputs on forward "
            << forward << "\n";
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  bench::ObsFlags obs;
  bool forwards_given = false;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse(argc, argv, i)) continue;
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--forwards" && i + 1 < argc) {
      try {
        opt.forwards = std::stoul(argv[++i]);
      } catch (const std::exception&) {
        std::cerr << "bad value for --forwards\n";
        return 2;
      }
      forwards_given = true;
    } else if (arg == "--out" && i + 1 < argc) {
      opt.out_path = argv[++i];
    } else {
      std::cerr << "usage: residency_bench [--forwards N] [--smoke] [--out <path>]"
                << bench::ObsFlags::kUsage << "\n";
      return 2;
    }
  }
  if (opt.smoke && !forwards_given) opt.forwards = 8;
  if (opt.forwards == 0) {
    std::cerr << "--forwards must be positive\n";
    return 2;
  }

  const NetShape shape;
  const auto specs = make_specs(shape);
  const auto inputs = make_inputs(opt.forwards, shape.sizes.front());

  obs.arm();
  // Re-poke baseline: identical weight rows loaded on every forward.
  macro::ImcMemory repoke_mem(node_memory());
  engine::ExecutionEngine repoke_eng(repoke_mem);
  app::Mlp repoke_net(specs);
  ModeTotals repoke;
  std::vector<std::vector<double>> expected;
  expected.reserve(opt.forwards);
  for (const auto& x : inputs) {
    expected.push_back(repoke_net.forward(repoke_eng, x));
    accumulate(repoke, repoke_net.last_stats());
  }

  // Resident: weights pinned at construction, materialized on the first
  // forward, referenced by handle ever after.
  macro::ImcMemory resident_mem(node_memory());
  engine::ExecutionEngine resident_eng(resident_mem);
  app::Mlp resident_net(specs, resident_eng);
  ModeTotals resident;
  for (std::size_t f = 0; f < inputs.size(); ++f) {
    const auto y = resident_net.forward(resident_eng, inputs[f]);
    require_identical(y, expected[f], "resident (direct engine)", f);
    accumulate(resident, resident_net.last_stats());
  }
  const engine::ResidencyStats res_stats = resident_eng.residency_stats();

  // Serve route spot check: pinned weights behind a 2-memory pool; handle
  // requests must be routed to their home memory and stay bit-identical.
  std::uint64_t serve_saved = 0;
  {
    serve::MemoryPoolConfig pcfg;
    pcfg.memories = 2;
    pcfg.memory = node_memory();
    pcfg.threads_per_memory = 2;
    serve::MemoryPool pool(pcfg);
    serve::Server server(pool);
    app::Mlp served_net(specs, server);
    const std::size_t checks = std::min<std::size_t>(2, inputs.size());
    for (std::size_t f = 0; f < checks; ++f) {
      const auto y = served_net.forward(server, inputs[f]);
      require_identical(y, expected[f], "resident (serve::Server pool)", f);
    }
    server.stop();
    serve_saved = server.stats().modeled_load_cycles_saved;
  }

  const double load_win = resident.load_cycles == 0
                              ? 0.0
                              : static_cast<double>(repoke.load_cycles) /
                                    static_cast<double>(resident.load_cycles);
  const double pipelined_win = resident.pipelined_cycles == 0
                                   ? 0.0
                                   : static_cast<double>(repoke.pipelined_cycles) /
                                         static_cast<double>(resident.pipelined_cycles);

  print_banner(std::cout, "Repeated 8-bit MLP inference: resident vs re-poked weights");
  std::cout << "  net 64-32-16-10 @ 8 bit, " << kMacros << " macros, " << opt.forwards
            << " forwards\n";
  TextTable table({"mode", "load_cycles", "saved", "pipelined_cycles", "compute_cycles"});
  const auto row = [&](const char* name, const ModeTotals& m) {
    table.add_row({name, std::to_string(m.load_cycles), std::to_string(m.load_cycles_saved),
                   std::to_string(m.pipelined_cycles), std::to_string(m.compute_cycles)});
  };
  row("re-poked", repoke);
  row("resident", resident);
  table.print(std::cout);
  std::cout << "modeled load-cycle win: " << TextTable::ratio(load_win)
            << " (pipelined win " << TextTable::ratio(pipelined_win) << "); "
            << res_stats.materializations << " materializations, " << res_stats.evictions
            << " evictions\n";

  obs.finish();
  JsonWriter w(opt.out_path);
  w.begin_object();
  w.field("schema", "bpim.residency.v1");
  w.field("mode", opt.smoke ? "smoke" : "full");
  w.field("forwards", opt.forwards);
  w.field("macros", kMacros);
  w.field("sizes", shape.sizes);
  w.field("bits", shape.bits);
  w.key("repoked");
  w.begin_object();
  w.field("load_cycles", repoke.load_cycles);
  w.field("pipelined_cycles", repoke.pipelined_cycles);
  w.field("compute_cycles", repoke.compute_cycles);
  w.end_object();
  w.key("resident");
  w.begin_object();
  w.field("load_cycles", resident.load_cycles);
  w.field("load_cycles_saved", resident.load_cycles_saved);
  w.field("pipelined_cycles", resident.pipelined_cycles);
  w.field("compute_cycles", resident.compute_cycles);
  w.field("materializations", res_stats.materializations);
  w.field("evictions", res_stats.evictions);
  w.end_object();
  w.field("serve_pool_load_cycles_saved", serve_saved);
  w.field("load_cycle_win", load_win);
  w.field("pipelined_cycle_win", pipelined_win);
  w.end_object();
  std::cout << "wrote " << opt.out_path << "\n";

  // Acceptance gate: repeated inference with pinned weights must spend at
  // least 1.5x fewer modeled load cycles than the re-poke path.
  if (load_win < 1.5) {
    std::cerr << "WARNING: resident load-cycle win " << load_win
              << "x is below the 1.5x gate\n";
    return 1;
  }
  return 0;
}
