// Extension study: Monte-Carlo fmax yield.
//
// The paper quotes a single fmax per supply point. Here the mismatch-aware
// BL-compute transient replaces the fixed WL-activation + sensing phases of
// the cycle budget, giving a *distribution* of achievable cycle times and a
// yield curve against a frequency target -- the margin story behind the
// 2.25 GHz headline number.

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "timing/bl_compute.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  print_banner(std::cout, "Extension -- Monte-Carlo fmax yield @ 0.9 V (NN, 25 C)");

  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  const timing::BlComputeConfig cfg;
  const timing::FreqModel fm;

  // Mismatch samples of the combined WL-activation + BL-sensing phase.
  const auto bl = timing::bl_delay_distribution(timing::BlScheme::ShortWlBoost, cfg, op,
                                                4000, 0x71E1D);

  // Fixed components of the cycle at 0.9 V.
  const auto b = fm.breakdown(0.9_V);
  const double fixed = (b.bl_precharge + b.logic + b.write_back).si();

  SampleSet fmax_ghz;
  for (const double d : bl.samples()) fmax_ghz.add(1e-9 / (fixed + d));

  TextTable t({"percentile", "fmax [GHz]"});
  for (const double p : {0.01, 0.10, 0.50, 0.90, 0.99}) {
    t.add_row({TextTable::num(100.0 * p, 0) + "%",
               TextTable::num(fmax_ghz.percentile(1.0 - p), 3)});
  }
  t.print(std::cout);

  print_banner(std::cout, "Yield vs clock target (fraction of MC samples meeting it)");
  TextTable y({"clock target [GHz]", "yield"});
  for (const double target : {0.8, 0.9, 1.0, 1.1, 1.2, 1.3}) {
    const auto& s = fmax_ghz.samples();
    const double pass = static_cast<double>(
                            std::count_if(s.begin(), s.end(),
                                          [&](double f) { return f >= target; })) /
                        static_cast<double>(s.size());
    y.add_row({TextTable::num(target, 1), TextTable::num(100.0 * pass, 1) + "%"});
  }
  y.print(std::cout);

  std::cout << "\nNote: the nominal Fig 8 cycle budget books 270 ps for WL activation +\n"
               "sensing; the MC transient (boost trigger + SA) is the long pole in the\n"
               "tails, so the yield knee sits below the nominal fmax -- the timing margin\n"
               "a silicon implementation would close with its sense-timing calibration.\n";
  return 0;
}
