// Sparsity sweep: modeled cycles/op of the adaptive MULT path (operand
// narrowing + zero skipping, macro::AdaptivePolicy) against the dense
// Table-1 schedule, at 4/8-bit precision over activation sparsity 0..95%.
//
// Operands model a ReLU'd activation stream: each multiplier unit is zero
// with probability `sparsity`, and nonzero values have geometrically
// distributed bit width (ratio 0.5) -- small magnitudes dominate, the way
// post-ReLU activations do. Multiplicands (weights) are dense and nonzero.
// Every adaptive run is checked bit-identical against its dense twin and
// the per-op cycle split is checked exact (dense == adaptive + saved) --
// a bench result that fails either check exits nonzero.
//
// Results land in BENCH_sparsity.json (schema bpim.sparsity.v1); the CI
// release-bench job runs the smoke mode and uploads the JSON.
//
// Usage: sparsity_bench [--smoke] [--out <path>] [--trace <path>]
//                       [--metrics <path>] [--trace-macros]

#include <iostream>
#include <string>
#include <vector>

#include "obs_flags.hpp"
#include "common/json_writer.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "macro/imc_macro.hpp"
#include "macro/program.hpp"

using namespace bpim;
using array::RowRef;

namespace {

constexpr std::size_t kCols = 256;

macro::MacroConfig bench_macro_cfg() {
  macro::MacroConfig cfg;
  cfg.geometry.cols = kCols;
  return cfg;
}

/// ReLU-style activation value: zero w.p. `sparsity`, else a nonzero whose
/// bit width is geometric (ratio 0.5, capped at `bits`).
std::uint64_t relu_activation(Rng& rng, unsigned bits, double sparsity) {
  if (rng.uniform() < sparsity) return 0;
  unsigned w = 1;
  while (w < bits && (rng.next_u64() & 1)) ++w;
  const std::uint64_t msb = 1ull << (w - 1);
  return msb | (rng.next_u64() & (msb - 1));
}

struct SweepPoint {
  unsigned bits = 0;
  int sparsity_pct = 0;
  std::size_t ops = 0;
  double dense_cycles_per_op = 0.0;
  double adaptive_cycles_per_op = 0.0;
  std::uint64_t adaptive_cycles_saved = 0;
  [[nodiscard]] double modeled_speedup() const {
    return adaptive_cycles_per_op > 0 ? dense_cycles_per_op / adaptive_cycles_per_op : 0;
  }
};

SweepPoint run_point(unsigned bits, int sparsity_pct, std::size_t ops) {
  SweepPoint pt;
  pt.bits = bits;
  pt.sparsity_pct = sparsity_pct;
  pt.ops = ops;

  Rng rng(0x5BA5 + bits * 1000 + static_cast<std::uint64_t>(sparsity_pct));
  macro::ImcMacro dense_m{bench_macro_cfg()};
  macro::ImcMacro adapt_m{bench_macro_cfg()};
  macro::MacroController dense_ctl(dense_m, macro::VerifyMode::VerifyFirst);
  macro::MacroController adapt_ctl(adapt_m, macro::VerifyMode::VerifyFirst);
  const macro::AdaptivePolicy policy{true, true};
  const std::size_t units = dense_m.mult_units_per_row(bits);
  const std::uint64_t mask = (1ull << bits) - 1;

  macro::Program prog;
  prog.mult(RowRef::main(0), RowRef::main(1), bits);

  std::uint64_t dense_cycles = 0, adapt_cycles = 0;
  const double sparsity = static_cast<double>(sparsity_pct) / 100.0;
  for (std::size_t op = 0; op < ops; ++op) {
    for (std::size_t u = 0; u < units; ++u) {
      // Weight row (multiplicand, D1): dense, nonzero.
      const std::uint64_t w = 1 + (rng.next_u64() & mask & ~1ull);
      // Activation row (multiplier, FF): the sparse side the policy scans.
      const std::uint64_t x = relu_activation(rng, bits, sparsity);
      for (macro::ImcMacro* m : {&dense_m, &adapt_m}) {
        m->poke_mult_operand(0, u, bits, w);
        m->poke_mult_operand(1, u, bits, x);
      }
    }
    std::vector<macro::TraceEntry> dt, at;
    const macro::ProgramStats ds = dense_ctl.run(prog, &dt);
    const macro::ProgramStats as = adapt_ctl.run(prog, &at, false, policy);
    if (at.back().result != dt.back().result) {
      std::cerr << "FATAL: adaptive result diverged from dense (bits=" << bits
                << " sparsity=" << sparsity_pct << "%)\n";
      std::exit(1);
    }
    if (as.cycles + as.adaptive_cycles_saved != ds.cycles) {
      std::cerr << "FATAL: cycle conservation violated (bits=" << bits
                << " sparsity=" << sparsity_pct << "%): dense " << ds.cycles
                << " != adaptive " << as.cycles << " + saved " << as.adaptive_cycles_saved
                << "\n";
      std::exit(1);
    }
    dense_cycles += ds.cycles;
    adapt_cycles += as.cycles;
    pt.adaptive_cycles_saved += as.adaptive_cycles_saved;
  }
  pt.dense_cycles_per_op = static_cast<double>(dense_cycles) / static_cast<double>(ops);
  pt.adaptive_cycles_per_op = static_cast<double>(adapt_cycles) / static_cast<double>(ops);
  return pt;
}

void write_json(const std::string& path, bool smoke, const std::vector<SweepPoint>& points) {
  JsonWriter w(path);
  w.begin_object();
  w.field("schema", "bpim.sparsity.v1");
  w.field("mode", smoke ? "smoke" : "full");
  w.field("cols", kCols);
  w.field("bit_identical", true);       // enforced per op above, or we exited
  w.field("conservation_exact", true);  // ditto
  w.key("sweep");
  w.begin_array();
  for (const auto& p : points) {
    w.begin_object();
    w.field("bits", p.bits);
    w.field("sparsity_pct", p.sparsity_pct);
    w.field("ops", p.ops);
    w.field("dense_cycles_per_op", p.dense_cycles_per_op);
    w.field("adaptive_cycles_per_op", p.adaptive_cycles_per_op);
    w.field("adaptive_cycles_saved", p.adaptive_cycles_saved);
    w.field("modeled_speedup", p.modeled_speedup());
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sparsity.json";
  bench::ObsFlags obs;
  for (int i = 1; i < argc; ++i) {
    if (obs.parse(argc, argv, i)) continue;
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: sparsity_bench [--smoke] [--out <path>]" << bench::ObsFlags::kUsage
                << "\n";
      return 2;
    }
  }
  const std::size_t ops = smoke ? 64 : 512;

  obs.arm();
  std::vector<SweepPoint> points;
  for (const unsigned bits : {4u, 8u})
    for (const int sparsity : {0, 25, 50, 75, 95})
      points.push_back(run_point(bits, sparsity, ops));
  obs.finish();

  print_banner(std::cout, "Adaptive vs dense MULT cycles/op (one 128x" +
                              std::to_string(kCols) + " macro, ReLU-style activations)");
  TextTable table({"bits", "sparsity", "dense cyc/op", "adaptive cyc/op", "speedup"});
  for (const auto& p : points)
    table.add_row({std::to_string(p.bits), std::to_string(p.sparsity_pct) + "%",
                   TextTable::num(p.dense_cycles_per_op, 2),
                   TextTable::num(p.adaptive_cycles_per_op, 2),
                   TextTable::ratio(p.modeled_speedup())});
  table.print(std::cout);

  write_json(out_path, smoke, points);
  std::cout << "\nwrote " << out_path << "\n";

  // Acceptance gates: every point bit-identical with exact conservation
  // (checked inline above), >=1.5x modeled speedup at 8-bit/75% sparsity,
  // and zero regression against dense at 0% sparsity.
  int rc = 0;
  for (const auto& p : points) {
    if (p.bits == 8 && p.sparsity_pct == 75 && p.modeled_speedup() < 1.5) {
      std::cerr << "WARNING: 8-bit/75% modeled speedup " << p.modeled_speedup()
                << " is below the 1.5x target\n";
      rc = 1;
    }
    if (p.sparsity_pct == 0 && p.adaptive_cycles_per_op > p.dense_cycles_per_op) {
      std::cerr << "WARNING: adaptive regresses dense cycles at 0% sparsity (bits="
                << p.bits << ")\n";
      rc = 1;
    }
  }
  return rc;
}
