// ExecutionEngine scaling: host wall-clock speedup of the sharded,
// multi-threaded engine over the serial seed path, swept across thread
// count and macro count, plus the cycle-model win of double-buffered
// batches. Every parallel run is checked bit-identical (values and
// RunStats) against the 1-thread execution of the same workload, which is
// exactly the seed's serial macro walk.
//
// Usage: engine_scaling [--elements N] [--repeats R] [--bits B]
//                       [--threads t1,t2,...] [--macros m1,m2,...]
//                       [--ops b1,b2,...]
//   --elements  vector length per op               (default 4096)
//   --repeats   timed repetitions per cell         (default 5)
//   --bits      operand precision                  (default 8)
//   --threads   thread-count sweep                 (default 1,2,4,8)
//   --macros    macro-count sweep (weak scaling)   (default 1,2,4,8,16,32)
//   --ops       batch-size sweep (double buffering)(default 1,4,16,64)
// Shorter lists make shorter runs -- CI smoke passes e.g.
// `--threads 1,2 --macros 1,4 --ops 1,8 --repeats 2`.

#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"
#include "macro/isa.hpp"

using namespace bpim;
using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

namespace {

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t mask = (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

macro::MemoryConfig memory_of(std::size_t macros) {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = macros;
  return cfg;
}

struct Timed {
  double seconds = 0.0;
  OpResult result;
};

/// Run `op` `repeats` times on a fresh memory each time; report best time.
Timed time_run(const VecOp& op, std::size_t macros, std::size_t threads, int repeats) {
  Timed t;
  t.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    macro::ImcMemory mem(memory_of(macros));
    ExecutionEngine eng(mem, EngineConfig{threads});
    const auto t0 = std::chrono::steady_clock::now();
    OpResult res = eng.run(op);
    const auto t1 = std::chrono::steady_clock::now();
    t.seconds = std::min(t.seconds, std::chrono::duration<double>(t1 - t0).count());
    t.result = std::move(res);
  }
  return t;
}

bool identical(const OpResult& a, const OpResult& b) {
  return a.values == b.values && a.stats.elements == b.stats.elements &&
         a.stats.elapsed_cycles == b.stats.elapsed_cycles &&
         a.stats.energy.si() == b.stats.energy.si() &&
         a.stats.elapsed_time.si() == b.stats.elapsed_time.si();
}

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t v = std::stoul(item);
    if (v == 0) throw std::invalid_argument("list entries must be positive");
    out.push_back(v);
  }
  if (out.empty()) throw std::invalid_argument("empty list");
  return out;
}

[[noreturn]] void usage() {
  std::cerr << "usage: engine_scaling [--elements N] [--repeats R] [--bits B]\n"
               "                      [--threads t1,t2,...] [--macros m1,m2,...]\n"
               "                      [--ops b1,b2,...]\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t elements = 4096;
  int repeats = 5;
  unsigned bits = 8;
  std::vector<std::size_t> thread_sweep = {1, 2, 4, 8};
  std::vector<std::size_t> macro_sweep = {1, 2, 4, 8, 16, 32};
  std::vector<std::size_t> batch_sweep = {1, 4, 16, 64};
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage();
        return argv[++i];
      };
      if (arg == "--elements")
        elements = std::stoul(value());
      else if (arg == "--repeats")
        repeats = std::stoi(value());
      else if (arg == "--bits")
        bits = static_cast<unsigned>(std::stoul(value()));
      else if (arg == "--threads")
        thread_sweep = parse_list(value());
      else if (arg == "--macros")
        macro_sweep = parse_list(value());
      else if (arg == "--ops")
        batch_sweep = parse_list(value());
      else
        usage();
    }
  } catch (const std::exception&) {
    usage();
  }
  if (elements == 0 || repeats < 1) usage();
  if (!macro::is_supported_precision(bits)) {
    std::cerr << "error: --bits must be one of 2/4/8/16/32\n";
    return 2;
  }
  {
    // 16 macros x mult units x 64 row pairs caps the first sweep's residency.
    macro::ImcMemory probe(memory_of(1));
    const std::size_t cap = 16 * probe.macro(0).mult_units_per_row(bits) * 64;
    if (elements > cap) {
      std::cerr << "error: elements > " << cap << " exceeds the 16-macro layer capacity for "
                << bits << "-bit MULT\n";
      return 2;
    }
  }

  const auto a = random_vec(elements, bits, 1);
  const auto b = random_vec(elements, bits, 2);
  // MULT is the heaviest op per layer (N+2 cycles) and the one the
  // ML/DSP workloads lean on; it is the representative kernel here.
  VecOp op{OpKind::Mult, bits, periph::LogicFn::And, a, b};

  std::cout << "host threads available: " << std::thread::hardware_concurrency() << "\n";
  if (std::thread::hardware_concurrency() < 2)
    std::cout << "NOTE: single-hardware-thread host -- parallel speedup is "
                 "bounded by the core count; determinism checks still run.\n";

  print_banner(std::cout, "Wall-clock speedup vs thread count (16 macros, " +
                              std::to_string(elements) + " x " + std::to_string(bits) +
                              "-bit MULT)");
  {
    TextTable table({"threads", "time_ms", "speedup", "bit-identical"});
    const Timed serial = time_run(op, 16, 1, repeats);
    for (const std::size_t threads : thread_sweep) {
      const Timed t = time_run(op, 16, threads, repeats);
      table.add_row({std::to_string(threads), TextTable::num(t.seconds * 1e3, 3),
                     TextTable::ratio(serial.seconds / t.seconds),
                     identical(serial.result, t.result) ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Wall-clock speedup vs macro count (4 threads, weak scaling)");
  {
    // Workload grows with the array: 32 row-pair layers per macro, so every
    // cell runs the same per-macro work and the sweep isolates dispatch cost.
    TextTable table({"macros", "elements", "serial_ms", "parallel_ms", "speedup",
                     "bit-identical"});
    for (const std::size_t macros : macro_sweep) {
      macro::ImcMemory probe(memory_of(1));
      const std::size_t units = probe.macro(0).mult_units_per_row(bits);
      const std::size_t n = macros * units * 32;
      const auto wa = random_vec(n, bits, 3);
      const auto wb = random_vec(n, bits, 4);
      VecOp wop{OpKind::Mult, bits, periph::LogicFn::And, wa, wb};
      const Timed serial = time_run(wop, macros, 1, repeats);
      const Timed parallel = time_run(wop, macros, 4, repeats);
      table.add_row({std::to_string(macros), std::to_string(n),
                     TextTable::num(serial.seconds * 1e3, 3),
                     TextTable::num(parallel.seconds * 1e3, 3),
                     TextTable::ratio(serial.seconds / parallel.seconds),
                     identical(serial.result, parallel.result) ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Batch double-buffering (cycle model, 16 macros)");
  {
    // A batch of independent ops: loads of op k+1 overlap compute of op k.
    TextTable table({"batch_ops", "serial_cycles", "pipelined_cycles", "overlap_speedup"});
    for (const std::size_t batch : batch_sweep) {
      macro::ImcMemory mem(memory_of(16));
      ExecutionEngine eng(mem, EngineConfig{4});
      std::vector<VecOp> ops(batch, op);
      (void)eng.run_batch(ops);
      const auto& bs = eng.last_batch();
      table.add_row({std::to_string(batch), std::to_string(bs.serial_cycles),
                     std::to_string(bs.pipelined_cycles),
                     TextTable::ratio(bs.overlap_speedup())});
    }
    table.print(std::cout);
  }
  return 0;
}
