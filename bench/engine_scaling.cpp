// ExecutionEngine scaling: host wall-clock speedup of the sharded,
// multi-threaded engine over the serial seed path, swept across thread
// count and macro count, plus the cycle-model win of double-buffered
// batches. Every parallel run is checked bit-identical (values and
// RunStats) against the 1-thread execution of the same workload, which is
// exactly the seed's serial macro walk.
//
// Usage: engine_scaling [elements] [repeats]
//   elements  vector length per op        (default 4096)
//   repeats   timed repetitions per cell  (default 5)

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"

using namespace bpim;
using engine::EngineConfig;
using engine::ExecutionEngine;
using engine::OpKind;
using engine::OpResult;
using engine::VecOp;

namespace {

std::vector<std::uint64_t> random_vec(std::size_t n, unsigned bits, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint64_t mask = (1ull << bits) - 1;
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_u64() & mask;
  return v;
}

macro::MemoryConfig memory_of(std::size_t macros) {
  macro::MemoryConfig cfg;
  cfg.banks = 1;
  cfg.macros_per_bank = macros;
  return cfg;
}

struct Timed {
  double seconds = 0.0;
  OpResult result;
};

/// Run `op` `repeats` times on a fresh memory each time; report best time.
Timed time_run(const VecOp& op, std::size_t macros, std::size_t threads, int repeats) {
  Timed t;
  t.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    macro::ImcMemory mem(memory_of(macros));
    ExecutionEngine eng(mem, EngineConfig{threads});
    const auto t0 = std::chrono::steady_clock::now();
    OpResult res = eng.run(op);
    const auto t1 = std::chrono::steady_clock::now();
    t.seconds = std::min(t.seconds, std::chrono::duration<double>(t1 - t0).count());
    t.result = std::move(res);
  }
  return t;
}

bool identical(const OpResult& a, const OpResult& b) {
  return a.values == b.values && a.stats.elements == b.stats.elements &&
         a.stats.elapsed_cycles == b.stats.elapsed_cycles &&
         a.stats.energy.si() == b.stats.energy.si() &&
         a.stats.elapsed_time.si() == b.stats.elapsed_time.si();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t elements = 4096;
  int repeats = 5;
  try {
    if (argc > 1) elements = std::stoul(argv[1]);
    if (argc > 2) repeats = std::stoi(argv[2]);
  } catch (const std::exception&) {
    std::cerr << "usage: engine_scaling [elements] [repeats]\n";
    return 2;
  }
  if (elements == 0 || repeats < 1) {
    std::cerr << "usage: engine_scaling [elements] [repeats]  (both must be positive)\n";
    return 2;
  }
  // 16 macros x 8 MULT units x 64 row pairs caps one run's residency.
  if (elements > 16 * 8 * 64) {
    std::cerr << "error: elements > " << 16 * 8 * 64
              << " exceeds the 16-macro layer capacity for 8-bit MULT\n";
    return 2;
  }
  const unsigned bits = 8;

  const auto a = random_vec(elements, bits, 1);
  const auto b = random_vec(elements, bits, 2);
  // MULT is the heaviest op per layer (N+2 cycles) and the one the
  // ML/DSP workloads lean on; it is the representative kernel here.
  VecOp op{OpKind::Mult, bits, periph::LogicFn::And, a, b};

  std::cout << "host threads available: " << std::thread::hardware_concurrency() << "\n";
  if (std::thread::hardware_concurrency() < 2)
    std::cout << "NOTE: single-hardware-thread host -- parallel speedup is "
                 "bounded by the core count; determinism checks still run.\n";

  print_banner(std::cout, "Wall-clock speedup vs thread count (16 macros, " +
                              std::to_string(elements) + " x " + std::to_string(bits) +
                              "-bit MULT)");
  {
    TextTable table({"threads", "time_ms", "speedup", "bit-identical"});
    const Timed serial = time_run(op, 16, 1, repeats);
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      const Timed t = time_run(op, 16, threads, repeats);
      table.add_row({std::to_string(threads), TextTable::num(t.seconds * 1e3, 3),
                     TextTable::ratio(serial.seconds / t.seconds),
                     identical(serial.result, t.result) ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Wall-clock speedup vs macro count (4 threads, weak scaling)");
  {
    // Workload grows with the array: 32 row-pair layers per macro, so every
    // cell runs the same per-macro work and the sweep isolates dispatch cost.
    TextTable table({"macros", "elements", "serial_ms", "parallel_ms", "speedup",
                     "bit-identical"});
    for (const std::size_t macros : {1u, 2u, 4u, 8u, 16u, 32u}) {
      macro::ImcMemory probe(memory_of(1));
      const std::size_t units = probe.macro(0).mult_units_per_row(bits);
      const std::size_t n = macros * units * 32;
      const auto wa = random_vec(n, bits, 3);
      const auto wb = random_vec(n, bits, 4);
      VecOp wop{OpKind::Mult, bits, periph::LogicFn::And, wa, wb};
      const Timed serial = time_run(wop, macros, 1, repeats);
      const Timed parallel = time_run(wop, macros, 4, repeats);
      table.add_row({std::to_string(macros), std::to_string(n),
                     TextTable::num(serial.seconds * 1e3, 3),
                     TextTable::num(parallel.seconds * 1e3, 3),
                     TextTable::ratio(serial.seconds / parallel.seconds),
                     identical(serial.result, parallel.result) ? "yes" : "NO"});
    }
    table.print(std::cout);
  }

  print_banner(std::cout, "Batch double-buffering (cycle model, 16 macros)");
  {
    // A batch of independent ops: loads of op k+1 overlap compute of op k.
    TextTable table({"batch_ops", "serial_cycles", "pipelined_cycles", "overlap_speedup"});
    for (const std::size_t batch : {1u, 4u, 16u, 64u}) {
      macro::ImcMemory mem(memory_of(16));
      ExecutionEngine eng(mem, EngineConfig{4});
      std::vector<VecOp> ops(batch, op);
      (void)eng.run_batch(ops);
      const auto& bs = eng.last_batch();
      table.add_row({std::to_string(batch), std::to_string(bs.serial_cycles),
                     std::to_string(bs.pipelined_cycles),
                     TextTable::ratio(bs.overlap_speedup())});
    }
    table.print(std::cout);
  }
  return 0;
}
