// Fig 8 reproduction, both panels:
//   left  -- cycle-time component breakdown at 0.9 V (one IMC cycle);
//   right -- maximum operating frequency and ADD/MULT TOPS/W vs supply
//            voltage (0.6-1.1 V), with and without the BL separator.
//
// Paper anchors: 603 ps cycle at 0.9 V (222 ps logic / 140 WL / 130 sense /
// 60 precharge / 51 write-back), 2.25 GHz at 1.0 V, 372 MHz at 0.6 V,
// ADD 8.09 and MULT 0.68 TOPS/W at 0.6 V.

#include <iostream>

#include "common/table.hpp"
#include "energy/energy_model.hpp"
#include "timing/freq_model.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  const timing::FreqModel fm;
  const energy::EnergyModel em;

  print_banner(std::cout, "Fig 8 (left) -- cycle-time breakdown @ 0.9 V");
  const auto b = fm.breakdown(0.9_V);
  const double total = in_ps(b.total());
  TextTable bt({"component", "delay [ps]", "share"});
  const auto row = [&](const char* name, Second d) {
    bt.add_row({name, TextTable::num(in_ps(d), 0),
                TextTable::num(100.0 * d.si() / b.total().si(), 1) + "%"});
  };
  row("logic (16b adder)", b.logic);
  row("WL activation", b.wl_activation);
  row("BL sensing", b.bl_sensing);
  row("BL precharge", b.bl_precharge);
  row("write-back (w/ separator)", b.write_back);
  bt.add_row({"total (1 cycle)", TextTable::num(total, 0), "100%"});
  bt.print(std::cout);
  std::cout << "\nPaper: 222/140/130/60/51 ps (36.8/23.2/21.6/10.0/8.5 %), 603 ps total.\n";

  print_banner(std::cout, "Fig 8 (right) -- fmax and TOPS/W vs supply (8-bit ops)");
  TextTable ft({"VDD [V]", "fmax [GHz]", "fmax w/o sep [GHz]", "ADD [TOPS/W]",
                "MULT w/ sep [TOPS/W]", "MULT w/o sep [TOPS/W]"});
  for (double v = 0.6; v <= 1.1 + 1e-9; v += 0.1) {
    const Volt vdd(v);
    const double add_tops = em.tops_per_watt(em.add(8, vdd));
    const double mult_w = em.tops_per_watt(em.mult(8, vdd, energy::SeparatorMode::Enabled));
    const double mult_wo = em.tops_per_watt(em.mult(8, vdd, energy::SeparatorMode::Disabled));
    ft.add_row({TextTable::num(v, 1), TextTable::num(in_GHz(fm.fmax(vdd)), 3),
                TextTable::num(in_GHz(fm.fmax(vdd, false)), 3), TextTable::num(add_tops, 2),
                TextTable::num(mult_w, 3), TextTable::num(mult_wo, 3)});
  }
  ft.print(std::cout);

  std::cout << "\nAnchors: fmax(1.0 V) = " << TextTable::num(in_GHz(fm.fmax(1.0_V)), 3)
            << " GHz (paper 2.25), fmax(0.6 V) = " << TextTable::num(in_MHz(fm.fmax(0.6_V)), 0)
            << " MHz (paper 372); ADD @0.6 V = "
            << TextTable::num(em.tops_per_watt(em.add(8, 0.6_V)), 2)
            << " TOPS/W (paper 8.09), MULT @0.6 V = "
            << TextTable::num(em.tops_per_watt(em.mult(8, 0.6_V, energy::SeparatorMode::Enabled)), 3)
            << " TOPS/W (paper 0.68).\n";
  return 0;
}
