#pragma once
// Shared --trace/--metrics flag handling for the bench executables.
//
//   --trace <path>     record a Perfetto trace of the benched section and
//                      export it to <path> (open at ui.perfetto.dev)
//   --metrics <path>   write the process metrics registry snapshot to
//                      <path> as JSON (schema bpim.metrics.v1)
//
// Usage in a bench's main():
//   bench::ObsFlags obs;
//   for (...) { if (obs.parse(argc, argv, i)) continue; ... }
//   obs.arm();        // right before the section worth tracing
//   ... benched work ...
//   obs.finish();     // export artifacts (no-op without the flags)

#include <iostream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bpim::bench {

struct ObsFlags {
  std::string trace_path;
  std::string metrics_path;
  /// Also record per-macro-program events (high volume; microscope view).
  bool macro_events = false;

  /// Usage-string suffix for the flags parse() consumes.
  static constexpr const char* kUsage =
      " [--trace <path>] [--metrics <path>] [--trace-macros]";

  /// Consume argv[i] if it is one of ours (advances i over the value).
  bool parse(int argc, char** argv, int& i) {
    const std::string arg = argv[i];
    const auto take = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = take();
      return true;
    }
    if (arg == "--metrics") {
      metrics_path = take();
      return true;
    }
    if (arg == "--trace-macros") {
      macro_events = true;
      return true;
    }
    return false;
  }

  /// Start recording (call right before the section worth tracing).
  void arm() const {
    if (trace_path.empty()) return;
    auto& session = obs::TraceSession::global();
    session.set_macro_events(macro_events);
    session.enable();
  }

  /// Export the requested artifacts; disables tracing again.
  void finish() const {
    if (!trace_path.empty()) {
      auto& session = obs::TraceSession::global();
      session.disable();
      if (session.export_file(trace_path))
        std::cout << "wrote " << trace_path << " (" << session.dropped()
                  << " events dropped)\n";
      else
        std::cerr << "WARNING: could not write trace to " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
      if (obs::MetricsRegistry::global().write_json_file(metrics_path))
        std::cout << "wrote " << metrics_path << "\n";
      else
        std::cerr << "WARNING: could not write metrics to " << metrics_path << "\n";
    }
  }
};

}  // namespace bpim::bench
