// Hot-path benchmark: ns/op of the word-parallel (SWAR) functional datapath
// against the seed's per-bit reference (baseline/naive_datapath), plus
// end-to-end MLP forward throughput through the ExecutionEngine.
//
// Kernels, at 4/8/16-bit precision on one 128x256 macro:
//   fa_add     FaLogics::add on a row-wide readout   vs naive per-bit ripple
//   add_rows   full macro ADD op (sense + FA + stats) -- no per-bit reference;
//              the pre-PR cost is fa_add's reference plus the same overheads
//   mult       ImcMacro::mult_rows (N+2-cycle sequence) vs the naive per-bit
//              add-and-shift datapath (reference excludes array/energy
//              traffic, so the reported speedup is conservative)
//   mult_program  the same MULT dispatched the way the engine now issues
//              every op: cached OpCompiler program run by a VerifyFirst
//              MacroController. Its reference is the direct mult_rows call,
//              so the reported ratio IS the unified-dispatch overhead.
//   mult_adaptive_dense  mult_rows with the adaptive policy enabled on
//              operands built so nothing can narrow or skip: the planner
//              scans and saves zero cycles, so ns/ref-ns is the pure host
//              cost of the operand scan (must stay within 5% at 8-bit).
//   logic      ImcMacro::logic_rows (word-parallel before and after this PR;
//              reported for the trajectory, no reference)
//
// Results land in BENCH_hotpath.json (schema bpim.hotpath.v1) so future PRs
// have a perf trajectory; see README "Performance".
//
// Usage: hot_path_bench [--smoke] [--out <path>]
//   --smoke   ~10x fewer iterations (CI-sized); same JSON shape
//   --out     output path (default BENCH_hotpath.json)

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "app/mlp.hpp"
#include "common/json_writer.hpp"
#include "baseline/naive_datapath.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "engine/execution_engine.hpp"
#include "macro/compiler.hpp"
#include "macro/imc_macro.hpp"
#include "macro/program.hpp"

using namespace bpim;
using array::BlReadout;
using array::RowRef;

namespace {

constexpr std::size_t kCols = 256;

/// Best-of-3 average ns per call of fn() over `iters` calls.
template <class F>
double time_ns(std::size_t iters, F&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::nano>(t1 - t0).count() /
                              static_cast<double>(iters));
  }
  return best;
}

struct KernelResult {
  std::string name;
  unsigned bits = 0;
  double ns_per_op = 0.0;
  double ref_ns_per_op = 0.0;  ///< 0 when the kernel has no per-bit reference
  [[nodiscard]] double speedup() const { return ref_ns_per_op > 0 ? ref_ns_per_op / ns_per_op : 0; }
};

macro::MacroConfig bench_macro_cfg() {
  macro::MacroConfig cfg;
  cfg.geometry.cols = kCols;
  return cfg;
}

std::vector<KernelResult> bench_kernels(std::size_t iters) {
  std::vector<KernelResult> out;
  Rng rng(0xBE9C);

  for (const unsigned bits : {4u, 8u, 16u}) {
    macro::ImcMacro m{bench_macro_cfg()};
    BitVector a(kCols), b(kCols);
    a.randomize(rng);
    b.randomize(rng);
    m.poke_row(0, a);
    m.poke_row(1, b);
    const BlReadout readout{a & b, ~(a | b)};

    KernelResult fa{"fa_add", bits, 0, 0};
    fa.ns_per_op =
        time_ns(iters, [&] { (void)periph::FaLogics::add(readout, bits, false); });
    fa.ref_ns_per_op =
        time_ns(iters / 4 + 1, [&] { (void)baseline::naive_add(readout, bits, false); });
    out.push_back(fa);

    KernelResult add{"add_rows", bits, 0, 0};
    add.ns_per_op =
        time_ns(iters, [&] { (void)m.add_rows(RowRef::main(0), RowRef::main(1), bits); });
    out.push_back(add);

    // MULT operands live in the low half of each 2N-bit unit.
    const std::size_t units = m.mult_units_per_row(bits);
    for (std::size_t u = 0; u < units; ++u) {
      m.poke_mult_operand(0, u, bits, rng.next_u64() & ((1ull << bits) - 1));
      m.poke_mult_operand(1, u, bits, rng.next_u64() & ((1ull << bits) - 1));
    }
    const BitVector row_a = m.peek_row(0);
    const BitVector row_b = m.peek_row(1);
    KernelResult mult{"mult", bits, 0, 0};
    mult.ns_per_op = time_ns(iters / 4 + 1,
                             [&] { (void)m.mult_rows(RowRef::main(0), RowRef::main(1), bits); });
    mult.ref_ns_per_op = time_ns(iters / 16 + 1,
                                 [&] { (void)baseline::naive_mult_datapath(row_a, row_b, bits); });
    out.push_back(mult);

    // Adaptive planning on operands with every multiplier MSB set: the scan
    // finds nothing to narrow or skip (modeled cycles identical to plain
    // mult by construction), so the ratio to the plain call on the same
    // data is the planner's host overhead.
    const std::uint64_t top = 1ull << (bits - 1);
    for (std::size_t u = 0; u < units; ++u) {
      m.poke_mult_operand(0, u, bits, top | (rng.next_u64() & (top - 1)));
      m.poke_mult_operand(1, u, bits, top | (rng.next_u64() & (top - 1)));
    }
    const macro::AdaptivePolicy adaptive{true, true};
    KernelResult ma{"mult_adaptive_dense", bits, 0, 0};
    ma.ns_per_op = time_ns(iters / 4 + 1, [&] {
      (void)m.mult_rows(RowRef::main(0), RowRef::main(1), bits, adaptive);
    });
    ma.ref_ns_per_op = time_ns(
        iters / 4 + 1, [&] { (void)m.mult_rows(RowRef::main(0), RowRef::main(1), bits); });
    out.push_back(ma);

    // The unified execution model's dispatch cost: the same MULT through a
    // cached single-op program and a VerifyFirst controller (the engine's
    // hot path after this PR). Reference = the direct call above, so
    // ref/ns is the dispatch overhead factor (close to 1.0 is good).
    macro::OpCompiler oc(m.config().geometry);
    const macro::Program& prog = oc.mult(RowRef::main(0), RowRef::main(1), bits);
    macro::MacroController ctl(m, macro::VerifyMode::VerifyFirst);
    KernelResult mp{"mult_program", bits, 0, 0};
    mp.ns_per_op = time_ns(iters / 4 + 1, [&] { (void)ctl.run(prog); });
    mp.ref_ns_per_op = mult.ns_per_op;
    out.push_back(mp);
  }

  {
    macro::ImcMacro m{bench_macro_cfg()};
    BitVector a(kCols), b(kCols);
    a.randomize(rng);
    b.randomize(rng);
    m.poke_row(0, a);
    m.poke_row(1, b);
    KernelResult logic{"logic", 0, 0, 0};
    logic.ns_per_op = time_ns(iters, [&] {
      (void)m.logic_rows(periph::LogicFn::Xor, RowRef::main(0), RowRef::main(1));
    });
    out.push_back(logic);
  }
  return out;
}

struct MlpResult {
  std::vector<std::size_t> sizes;   ///< in, hidden..., out
  std::vector<unsigned> bits;       ///< per layer
  double ns_per_forward = 0.0;
  double forwards_per_sec = 0.0;
  double macs_per_sec = 0.0;
};

MlpResult bench_mlp(std::size_t forwards) {
  Rng rng(0x3170);
  MlpResult r;
  r.sizes = {64, 48, 32, 10};
  r.bits = {8, 8, 4};
  std::vector<app::MlpLayerSpec> specs;
  std::size_t macs = 0;
  for (std::size_t l = 0; l + 1 < r.sizes.size(); ++l) {
    app::MlpLayerSpec spec;
    spec.bits = r.bits[l];
    spec.weights.assign(r.sizes[l + 1], std::vector<double>(r.sizes[l]));
    for (auto& row : spec.weights)
      for (auto& w : row) w = rng.uniform();
    macs += r.sizes[l] * r.sizes[l + 1];
    specs.push_back(std::move(spec));
  }
  app::Mlp mlp(std::move(specs));

  macro::MemoryConfig mcfg;
  mcfg.banks = 1;
  mcfg.macros_per_bank = 8;
  macro::ImcMemory mem(mcfg);
  engine::ExecutionEngine eng(mem, engine::EngineConfig{1});  // single-thread: the SWAR win alone

  std::vector<double> x(r.sizes.front());
  for (auto& v : x) v = rng.uniform();
  r.ns_per_forward = time_ns(forwards, [&] { (void)mlp.forward(eng, x); });
  r.forwards_per_sec = 1e9 / r.ns_per_forward;
  r.macs_per_sec = r.forwards_per_sec * static_cast<double>(macs);
  return r;
}

void write_json(const std::string& path, bool smoke, const std::vector<KernelResult>& kernels,
                const MlpResult& mlp) {
  JsonWriter w(path);
  w.begin_object();
  w.field("schema", "bpim.hotpath.v1");
  w.field("mode", smoke ? "smoke" : "full");
  w.field("cols", kCols);
  w.key("kernels");
  w.begin_array();
  for (const auto& k : kernels) {
    w.begin_object();
    w.field("name", k.name);
    w.field("bits", k.bits);
    w.field("ns_per_op", k.ns_per_op);
    if (k.ref_ns_per_op > 0) {
      w.field("ref_ns_per_op", k.ref_ns_per_op);
      w.field("speedup", k.speedup());
    }
    w.end_object();
  }
  w.end_array();
  w.key("mlp");
  w.begin_object();
  w.field("sizes", mlp.sizes);
  w.field("bits", mlp.bits);
  w.field("ns_per_forward", mlp.ns_per_forward);
  w.field("forwards_per_sec", mlp.forwards_per_sec);
  w.field("macs_per_sec", mlp.macs_per_sec);
  w.end_object();
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: hot_path_bench [--smoke] [--out <path>]\n";
      return 2;
    }
  }
  const std::size_t iters = smoke ? 200 : 2000;
  const std::size_t forwards = smoke ? 3 : 20;

#ifndef NDEBUG
  std::cout << "NOTE: assertions enabled (non-Release build) -- numbers are not "
               "representative; use -DCMAKE_BUILD_TYPE=Release.\n";
#endif

  const auto kernels = bench_kernels(iters);
  const auto mlp = bench_mlp(forwards);

  print_banner(std::cout, "Hot-path kernels (one 128x" + std::to_string(kCols) +
                              " macro, single thread)");
  TextTable table({"kernel", "bits", "ns/op", "naive ns/op", "speedup"});
  for (const auto& k : kernels) {
    table.add_row({k.name, k.bits ? std::to_string(k.bits) : "-", TextTable::num(k.ns_per_op, 1),
                   k.ref_ns_per_op > 0 ? TextTable::num(k.ref_ns_per_op, 1) : "-",
                   k.ref_ns_per_op > 0 ? TextTable::ratio(k.speedup()) : "-"});
  }
  table.print(std::cout);

  for (const auto& k : kernels)
    if (k.name == "mult_program" && k.bits == 8)
      std::cout << "  unified dispatch (cached program + VerifyFirst controller) costs "
                << TextTable::num(k.ns_per_op / k.ref_ns_per_op, 2)
                << "x the direct 8-bit mult_rows call per op\n";

  print_banner(std::cout, "End-to-end MLP forward (ExecutionEngine, 1 thread, 8 macros)");
  std::cout << "  layers 64-48-32-10 @ 8/8/4 bit: " << TextTable::num(mlp.ns_per_forward / 1e3, 1)
            << " us/forward, " << TextTable::num(mlp.forwards_per_sec, 1) << " forwards/s, "
            << TextTable::num(mlp.macs_per_sec / 1e6, 2) << " M MAC/s\n";

  write_json(out_path, smoke, kernels, mlp);
  std::cout << "\nwrote " << out_path << "\n";

  // Acceptance bars: >=5x on the 8-bit MULT path, and the adaptive
  // planner's dense-operand host overhead within 5% at 8-bit.
  for (const auto& k : kernels) {
    if (k.name == "mult" && k.bits == 8 && k.speedup() < 5.0) {
      std::cerr << "WARNING: 8-bit mult speedup " << k.speedup() << " is below the 5x target\n";
      return 1;
    }
    if (k.name == "mult_adaptive_dense" && k.bits == 8 &&
        k.ns_per_op > 1.05 * k.ref_ns_per_op) {
      std::cerr << "WARNING: adaptive planning costs "
                << TextTable::num(k.ns_per_op / k.ref_ns_per_op, 3)
                << "x the plain 8-bit mult on dense operands (>1.05x budget)\n";
      return 1;
    }
  }
  return 0;
}
