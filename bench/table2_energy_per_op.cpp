// Table 2 reproduction: energy per operation for ADD / SUB / MULT at
// 2/4/8-bit precision, SUB and MULT with and without the BL separator.
// Energies are measured by running each operation on the functional macro
// (the ledger charges the calibrated component prices cycle by cycle).

#include <iostream>

#include "common/table.hpp"
#include "energy/calibration.hpp"
#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;
using energy::SeparatorMode;

namespace {

double measure_fj(const char* op, unsigned bits, SeparatorMode sep) {
  macro::MacroConfig cfg;
  cfg.separator = sep;
  macro::ImcMacro m(cfg);
  const std::string o(op);
  if (o == "ADD") {
    m.add_rows(RowRef::main(0), RowRef::main(1), bits);
    return in_fJ(m.last_op().op_energy) / static_cast<double>(m.words_per_row(bits));
  }
  if (o == "SUB") {
    m.sub_rows(RowRef::main(0), RowRef::main(1), bits);
    return in_fJ(m.last_op().op_energy) / static_cast<double>(m.words_per_row(bits));
  }
  m.mult_rows(RowRef::main(0), RowRef::main(1), bits);
  return in_fJ(m.last_op().op_energy) / static_cast<double>(m.mult_units_per_row(bits));
}

}  // namespace

int main() {
  print_banner(std::cout, "Table 2 -- energy per operation [fJ] @ 0.9 V (measured on macro)");

  TextTable t({"operation", "bits", "separator", "measured [fJ]", "paper [fJ]", "error"});
  for (const auto& target : energy::table2_targets()) {
    const double fj = measure_fj(target.op, target.bits, target.sep);
    const double err = 100.0 * (fj - target.paper_fj) / target.paper_fj;
    const char* sep_label = std::string(target.op) == "ADD"
                                ? "-"
                                : (target.sep == SeparatorMode::Enabled ? "w/ sep" : "w/o sep");
    t.add_row({target.op, std::to_string(target.bits), sep_label, TextTable::num(fj, 1),
               TextTable::num(target.paper_fj, 1), TextTable::num(err, 1) + "%"});
  }
  t.print(std::cout);

  const auto report = energy::check_table2(energy::EnergyModel{});
  std::cout << "\nClosed-form calibration: max |error| "
            << TextTable::num(100.0 * report.max_abs_rel_error, 1) << "%, mean |error| "
            << TextTable::num(100.0 * report.mean_abs_rel_error, 1)
            << "% across all 15 published entries.\n";
  return 0;
}
