// Extension: pipelined back-to-back operation issue.
//
// The paper reports the serial cycle time (Fig 8). Because the logic phase
// uses the periphery while the BLs are idle, consecutive row operations can
// overlap; the separator additionally retires write-backs off the main BLs.
// This study quantifies the sustained-throughput headroom.

#include <iostream>

#include "common/table.hpp"
#include "timing/pipeline.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  print_banner(std::cout, "Extension -- pipelined issue vs serial cycle");

  const timing::PipelineModel m;
  TextTable t({"VDD [V]", "latency [ps]", "issue w/ sep [ps]", "issue w/o sep [ps]",
               "sustained speedup (w/ sep)", "ops/s gain from separator"});
  for (double v = 0.6; v <= 1.1 + 1e-9; v += 0.1) {
    const Volt vdd(v);
    const auto with = m.timing(vdd, true);
    const auto without = m.timing(vdd, false);
    t.add_row({TextTable::num(v, 1), TextTable::num(in_ps(with.latency), 0),
               TextTable::num(in_ps(with.issue_interval), 0),
               TextTable::num(in_ps(without.issue_interval), 0),
               TextTable::ratio(with.speedup_vs_serial(), 2),
               TextTable::ratio(without.issue_interval / with.issue_interval, 2)});
  }
  t.print(std::cout);

  std::cout << "\nAt 0.9 V the BL window (precharge+WL+sense = 330 ps) bounds issue: a\n"
               "pipelined controller could sustain 1.83x the serial operation rate, and\n"
               "the separator is worth a further 1.46x because write-back stops holding\n"
               "the main bit lines -- a second, throughput-side argument for it beyond\n"
               "the energy savings of Table 2.\n";
  return 0;
}
