#pragma once
// Shared JSON emission for the bench executables (BENCH_*.json artifacts).
//
// Every bench used to hand-roll its ofstream << JSON; this tiny writer
// keeps the schemas they emit, centralises comma/precision handling, and
// is dependency-free on purpose (the container has no JSON library, and
// the artifacts are flat enough that one is not worth vendoring).
//
// Usage:
//   JsonWriter w(path);
//   w.begin_object();
//   w.field("schema", "bpim.residency.v1");
//   w.key("sweep"); w.begin_array();
//     w.begin_object(); w.field("x", 1); w.end_object();
//   w.end_array();
//   w.end_object();   // newline-terminated on the way out
//
// Values: strings (escaped), bools, integers, doubles (fixed, default 6
// digits), and numeric vectors. Layout is pretty-printed, two-space
// indent, one key or element per line.

#include <fstream>
#include <iomanip>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace bpim::bench {

class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path, int precision = 6)
      : out_(path), precision_(precision) {}

  [[nodiscard]] bool ok() const { return out_.good(); }

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  /// Key of the next value inside an object.
  void key(std::string_view k) {
    separate();
    out_ << '"';
    escape(k);
    out_ << "\": ";
    pending_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    out_ << '"';
    escape(v);
    out_ << '"';
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    out_ << (v ? "true" : "false");
  }
  void value(double v) {
    separate();
    out_ << std::fixed << std::setprecision(precision_) << v;
  }
  template <class T, std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                                      int> = 0>
  void value(T v) {
    separate();
    out_ << v;
  }

  /// key + scalar value in one go.
  template <class T>
  void field(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// key + flat numeric array (one line per element).
  template <class T>
  void field(std::string_view k, const std::vector<T>& values) {
    key(k);
    begin_array();
    for (const T& v : values) value(v);
    end_array();
  }

 private:
  void open(char c) {
    separate();
    out_ << c;
    ++depth_;
    first_ = true;
  }

  void close(char c) {
    --depth_;
    if (!first_) newline();
    out_ << c;
    first_ = false;
    if (depth_ == 0) out_ << '\n';
  }

  /// Comma/newline bookkeeping before a key, value, or container. A value
  /// directly after its key stays on the key's line.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (depth_ > 0) {
      if (!first_) out_ << ',';
      newline();
    }
    first_ = false;
  }

  void newline() {
    out_ << '\n';
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }

  void escape(std::string_view s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') out_ << '\\';
      out_ << c;
    }
  }

  std::ofstream out_;
  int precision_;
  int depth_ = 0;
  bool first_ = true;
  bool pending_key_ = false;
};

}  // namespace bpim::bench
