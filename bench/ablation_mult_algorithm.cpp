// Ablation: the left-shift multiplication algorithm (Fig 5).
//
// The conventional sequencing of an NxN multiply on this substrate needs
// per-partial-product shifts of the multiplicand (1+2+...+(N-1) SHIFT ops)
// plus (N-1) ADDs. The paper's reversed-multiplier add-and-shift loop folds
// the shift into the write-back path, at 1 cycle per iteration -> N+2 total.
// Both schedules are *executed on the macro* and verified bit-exact.

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;
using macro::ImcMacro;
using macro::Op;

namespace {

/// Conventional schedule: for every set multiplier bit, shift a copy of the
/// multiplicand into place (i single-cycle SHIFT ops for bit i) and ADD it
/// into the accumulator. Rows: D0 = shifted multiplicand, D2 = accumulator.
std::uint64_t conventional_mult(ImcMacro& m, std::uint64_t a, std::uint64_t b, unsigned bits) {
  const unsigned wide = 2 * bits;
  m.poke_mult_operand(10, 0, bits, a);          // multiplicand in a 2N-bit slot
  m.poke_row(11, BitVector(m.cols()));          // accumulator source row = 0
  // acc starts as zero in D2.
  m.unary_row(Op::Copy, RowRef::main(11), RowRef::dummy(ImcMacro::kDummyAccum), wide);
  // Working copy of A in D0.
  m.unary_row(Op::Copy, RowRef::main(10), RowRef::dummy(ImcMacro::kDummyZero), wide);
  for (unsigned i = 0; i < bits; ++i) {
    if (i > 0)  // align the partial product: one SHIFT op per bit position
      m.unary_row(Op::Shift, RowRef::dummy(ImcMacro::kDummyZero),
                  RowRef::dummy(ImcMacro::kDummyZero), wide);
    if ((b >> i) & 1u)
      m.add_rows(RowRef::dummy(ImcMacro::kDummyZero), RowRef::dummy(ImcMacro::kDummyAccum),
                 wide, RowRef::dummy(ImcMacro::kDummyAccum));
  }
  std::uint64_t v = 0;
  const BitVector& acc = m.sram().row(RowRef::dummy(ImcMacro::kDummyAccum));
  for (unsigned i = 0; i < wide; ++i) v |= static_cast<std::uint64_t>(acc.get(i)) << i;
  return v;
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Ablation -- left-shift add-and-shift MULT vs conventional shift+add");

  TextTable t({"bits", "proposed cycles (N+2)", "incremental shift+add (measured)",
               "naive shift+add (1+2+..+(N-1) shifts)", "speedup vs naive", "results agree"});
  Rng rng(77);
  for (const unsigned bits : {2u, 4u, 8u, 16u}) {
    const std::uint64_t mask = (1ull << bits) - 1;
    // Worst case for the conventional path: all multiplier bits set.
    const std::uint64_t a = rng.next_u64() & mask;
    const std::uint64_t b = mask;

    ImcMacro prop{macro::MacroConfig{}};
    prop.poke_mult_operand(0, 0, bits, a);
    prop.poke_mult_operand(1, 0, bits, b);
    const BitVector p = prop.mult_rows(RowRef::main(0), RowRef::main(1), bits);
    const std::uint64_t prop_result = prop.peek_mult_product(p, 0, bits);
    const std::uint64_t prop_cycles = prop.total_cycles();

    ImcMacro conv{macro::MacroConfig{}};
    conv.reset_counters();
    const std::uint64_t conv_result = conventional_mult(conv, a, b, bits);
    const std::uint64_t conv_cycles = conv.total_cycles();

    // Paper's Fig 5 top-left schedule: partial product i needs i fresh
    // shifts of the multiplicand (no reuse) plus an add; plus 2 init copies.
    const std::uint64_t naive_cycles = 2 + bits * (bits - 1) / 2 + (bits - 1);

    t.add_row({std::to_string(bits), std::to_string(prop_cycles),
               std::to_string(conv_cycles), std::to_string(naive_cycles),
               TextTable::ratio(static_cast<double>(naive_cycles) /
                                    static_cast<double>(prop_cycles), 2),
               (prop_result == conv_result && prop_result == a * b) ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nPaper's 4x4 example: the conventional flow needs 6 (=1+2+3) shifts plus 3\n"
               "adds; even an improved incremental-shift schedule (measured column, executed\n"
               "on this macro and verified bit-exact) stays well behind the N+2-cycle\n"
               "add-and-shift loop.\n";
  return 0;
}
