// Fig 2 reproduction: Monte-Carlo distribution of the BL computation delay,
// WLUD (0.55 V) vs Short-WL (140 ps) + BL boosting, at iso access-disturb
// margin (target failure rate 2.5e-5). 28 nm-class models, 0.9 V, 25 C, NN.
//
// Paper claims reproduced in shape:
//   * WLUD: long-tail distribution reaching ~3.5 ns;
//   * proposed: short-tail distribution, ~2-3x faster mean;
//   * both schemes at the same ~2.5e-5 read-failure decade.

#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "timing/adm.hpp"
#include "timing/bl_compute.hpp"

using namespace bpim;
using namespace bpim::literals;

namespace {

void summarize(const char* name, const SampleSet& s) {
  TextTable t({"scheme", "mean [ns]", "sigma [ns]", "p50 [ns]", "p99 [ns]", "p99.9 [ns]",
               "tail skew"});
  const double skew = (s.percentile(0.99) - s.percentile(0.5)) /
                      (s.percentile(0.5) - s.percentile(0.01));
  t.add_row({name, TextTable::num(s.mean() * 1e9, 3), TextTable::num(s.stddev() * 1e9, 3),
             TextTable::num(s.percentile(0.5) * 1e9, 3),
             TextTable::num(s.percentile(0.99) * 1e9, 3),
             TextTable::num(s.percentile(0.999) * 1e9, 3), TextTable::num(skew, 2)});
  t.print(std::cout);
}

}  // namespace

int main() {
  print_banner(std::cout, "Fig 2 -- BL computation delay distribution (iso-ADM 2.5e-5)");
  std::cout << "28 nm-class behavioural models, 0.9 V, 25 C, NN corner\n"
            << "WLUD level 0.55 V; short WL pulse 140 ps + LVT BL booster\n\n";

  const circuit::OperatingPoint op{0.9_V, 25.0, circuit::Corner::NN};
  const timing::BlComputeConfig cfg;
  constexpr std::size_t kTrials = 12000;

  const auto prop =
      timing::bl_delay_distribution(timing::BlScheme::ShortWlBoost, cfg, op, kTrials, 0xF16'2A);
  const auto wlud =
      timing::bl_delay_distribution(timing::BlScheme::Wlud, cfg, op, kTrials, 0xF16'2B);

  summarize("Short WL + BL Boost", prop);
  std::cout << "\n";
  summarize("WLUD (0.55 V)", wlud);

  std::cout << "\nDelay histograms (" << kTrials << " MC samples each):\n\n";
  Histogram h_prop(0.0, 3.5, 28), h_wlud(0.0, 3.5, 28);
  for (const double x : prop.samples()) h_prop.add(x * 1e9);
  for (const double x : wlud.samples()) h_wlud.add(x * 1e9);
  std::cout << "Short WL + BL Boost (short-tail):\n" << h_prop.render(46, " ns") << "\n";
  std::cout << "WLUD 0.55 V (long-tail):\n" << h_wlud.render(46, " ns") << "\n";

  print_banner(std::cout, "Iso-ADM check (paper target: 2.5e-5 read failure)");
  const auto r_wlud = timing::wlud_disturb_rate(cfg, op, cfg.wlud_level, 400000, 0xADA1);
  const auto r_prop = timing::shortwl_disturb_rate(cfg, op, 400000, 0xADA2);
  TextTable t({"scheme", "failures", "trials", "rate", "95% upper bound"});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2e", r_wlud.rate());
  t.add_row({"WLUD (0.55 V)", std::to_string(r_wlud.failures), std::to_string(r_wlud.trials),
             buf, [&] { std::snprintf(buf, sizeof buf, "%.2e", r_wlud.rate_upper95()); return std::string(buf); }()});
  std::snprintf(buf, sizeof buf, "%.2e", r_prop.rate());
  t.add_row({"Short WL + Boost", std::to_string(r_prop.failures), std::to_string(r_prop.trials),
             buf, [&] { std::snprintf(buf, sizeof buf, "%.2e", r_prop.rate_upper95()); return std::string(buf); }()});
  t.print(std::cout);

  std::cout << "\nPaper comparison: WLUD long-tail vs proposed short-tail reproduced; mean\n"
               "speedup " << TextTable::num(wlud.mean() / prop.mean(), 2)
            << "x (paper shows ~2-3x at 0.9 V); both schemes in the 2.5e-5 failure decade\n"
               "(WLUD measured at the calibrated 0.55 V level; the proposed scheme is at or\n"
               "below it -- see EXPERIMENTS.md).\n";
  return 0;
}
