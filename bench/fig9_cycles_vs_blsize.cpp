// Fig 9 reproduction: cycles per operation vs BL size (number of bit lines
// = row width of one compute tile) for 8-bit ADD / SUB / MULT, conventional
// bit-serial baseline [2] vs the proposed bit-parallel architecture.
//
// Cycle counts are measured by *running both functional simulators* on a
// vector workload, not from closed forms. The baseline's parallelism is
// pinned to its fixed 64 column-ALU organisation (256 columns, 4:1), so its
// cycles/op is flat in BL size; the proposed macro retires one full row of
// words per Table-1 latency, so its cycles/op falls ~1/B.
//
// Paper claims reproduced: flat baseline curves, ~1/B proposed curves, the
// MULT crossover near BL size 128, and a widening advantage with BL size.
// The paper's printed ratio labels are tabulated alongside; the exact axis
// semantics of Fig 9 are under-specified (see DESIGN.md / EXPERIMENTS.md).

#include <iostream>
#include <vector>

#include "baseline/bitserial.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;

namespace {

struct OpResult {
  double conv_cpo;
  double prop_cpo;
};

enum class WhichOp { Add, Sub, Mult };

double run_conv(WhichOp op, unsigned bits, std::size_t batches) {
  baseline::BitSerialMacro m;
  Rng rng(101);
  const std::size_t n = m.alus();
  std::uint64_t ops = 0;
  for (std::size_t k = 0; k < batches; ++k) {
    for (std::size_t e = 0; e < n; ++e) {
      m.poke_element(e, 0, bits, rng.next_u64() & 0xFF);
      m.poke_element(e, bits, bits, rng.next_u64() & 0xFF);
    }
    switch (op) {
      case WhichOp::Add: m.add(0, bits, 2 * bits, bits, n); break;
      case WhichOp::Sub: m.sub(0, bits, 2 * bits, bits, n); break;
      case WhichOp::Mult: m.mult(0, bits, 2 * bits, bits, n); break;
    }
    ops += n;
  }
  return static_cast<double>(m.total_cycles()) / static_cast<double>(ops);
}

double run_prop(WhichOp op, unsigned bits, std::size_t bl_size, std::size_t batches) {
  macro::MacroConfig cfg;
  cfg.geometry.cols = bl_size;
  macro::ImcMacro m(cfg);
  Rng rng(202);
  std::uint64_t ops = 0;
  for (std::size_t k = 0; k < batches; ++k) {
    BitVector a(bl_size), b(bl_size);
    a.randomize(rng);
    b.randomize(rng);
    m.poke_row(2 * k, a);
    m.poke_row(2 * k + 1, b);
    const auto ra = RowRef::main(2 * k), rb = RowRef::main(2 * k + 1);
    switch (op) {
      case WhichOp::Add:
        m.add_rows(ra, rb, bits);
        ops += m.words_per_row(bits);
        break;
      case WhichOp::Sub:
        m.sub_rows(ra, rb, bits);
        ops += m.words_per_row(bits);
        break;
      case WhichOp::Mult:
        m.mult_rows(ra, rb, bits);
        ops += m.mult_units_per_row(bits);
        break;
    }
  }
  return static_cast<double>(m.total_cycles()) / static_cast<double>(ops);
}

void run_panel(const char* name, WhichOp op, const std::vector<double>& paper_ratios) {
  print_banner(std::cout, std::string("Fig 9 -- ") + name +
                              " cycles/op vs BL size (8-bit, measured by simulation)");
  TextTable t({"BL size", "conv bit-serial [cyc/op]", "proposed [cyc/op]", "ratio",
               "paper ratio label"});
  const double conv = run_conv(op, 8, 8);
  std::size_t idx = 0;
  for (const std::size_t bl : {128u, 256u, 512u, 1024u}) {
    const double prop = run_prop(op, 8, bl, 8);
    t.add_row({std::to_string(bl), TextTable::num(conv, 4), TextTable::num(prop, 4),
               TextTable::ratio(prop / conv, 2), TextTable::ratio(paper_ratios[idx++], 2)});
  }
  t.print(std::cout);
}

}  // namespace

int main() {
  run_panel("ADD", WhichOp::Add, {0.38, 0.27, 0.17, 0.16});
  run_panel("SUB", WhichOp::Sub, {0.23, 0.18, 0.13, 0.08});
  run_panel("MULT", WhichOp::Mult, {1.19, 0.68, 0.36, 0.19});

  std::cout << "\nShape checks vs the paper: baseline flat in BL size; proposed ~1/B;\n"
               "MULT crossover (ratio ~1) near BL size 128; advantage widens with BL size.\n"
               "Absolute ratio labels differ where Fig 9's axis semantics are ambiguous --\n"
               "see the per-experiment notes in EXPERIMENTS.md.\n";
  return 0;
}
