// Fig 7(a) reproduction: BL computing delay (WL driver to single-ended SA)
// across process corners, 0.55 V WLUD baseline vs the proposed short-WL +
// BL-boost scheme. 0.9 V, 25 C.
//
// Paper claim: the proposed scheme improves the worst-case BL computing
// delay to ~0.22x of the WLUD baseline.

#include <algorithm>
#include <iostream>

#include "common/table.hpp"
#include "timing/bl_compute.hpp"

using namespace bpim;
using namespace bpim::literals;

int main() {
  print_banner(std::cout, "Fig 7(a) -- BL computing delay vs process corner (0.9 V, 25 C)");

  const timing::BlComputeConfig cfg;
  TextTable t({"corner", "WLUD 0.55 V [ns]", "Short WL + Boost [ns]", "ratio"});
  double worst_wlud = 0.0, worst_prop = 0.0;
  for (const auto corner : circuit::kAllCorners) {
    const circuit::OperatingPoint op{0.9_V, 25.0, corner};
    const double wlud =
        timing::BlComputeModel(timing::BlScheme::Wlud, cfg, op).nominal_delay().si() * 1e9;
    const double prop =
        timing::BlComputeModel(timing::BlScheme::ShortWlBoost, cfg, op).nominal_delay().si() *
        1e9;
    worst_wlud = std::max(worst_wlud, wlud);
    worst_prop = std::max(worst_prop, prop);
    t.add_row({circuit::to_string(corner), TextTable::num(wlud, 3), TextTable::num(prop, 3),
               TextTable::ratio(prop / wlud, 2)});
  }
  t.print(std::cout);

  std::cout << "\nWorst-case: WLUD " << TextTable::num(worst_wlud, 3) << " ns vs proposed "
            << TextTable::num(worst_prop, 3) << " ns  ->  "
            << TextTable::ratio(worst_prop / worst_wlud, 2)
            << "  (paper: 0.22x at worst case)\n";
  return 0;
}
