// Sum of absolute differences (SAD) for block motion estimation -- a
// classic video workload built from the macro's SUB primitive.
//
// |a-b| is computed from the two in-memory subtractions a-b and b-a: for
// unsigned operands exactly one of them is the absolute difference (the
// other wraps), selected by the borrow. The IMC memory supplies the
// subtraction bandwidth; the host does the select+accumulate.
//
//   $ ./motion_estimation_sad

#include <cstdio>
#include <cstdlib>

#include "app/vector_engine.hpp"
#include "common/rng.hpp"

using namespace bpim;

namespace {

/// 16x16 block of 8-bit pixels, flattened.
std::vector<std::uint64_t> make_block(Rng& rng, int dc) {
  std::vector<std::uint64_t> b(256);
  for (auto& p : b) {
    const int v = dc + static_cast<int>(rng.uniform_u64(64));
    p = static_cast<std::uint64_t>(std::min(std::max(v, 0), 255));
  }
  return b;
}

std::uint64_t sad_reference(const std::vector<std::uint64_t>& a,
                            const std::vector<std::uint64_t>& b) {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
  return s;
}

}  // namespace

int main() {
  Rng rng(42);
  const auto current = make_block(rng, 96);

  macro::ImcMemory memory;
  app::VectorEngine engine(memory, 8);

  std::printf("16x16 SAD search: current block vs 8 candidate blocks (8-bit pixels)\n\n");
  std::printf("%-10s %-12s %-12s %-12s %-10s\n", "candidate", "SAD (IMC)", "SAD (ref)",
              "cycles", "energy[pJ]");

  std::uint64_t best = ~0ull;
  int best_idx = -1;
  for (int cand = 0; cand < 8; ++cand) {
    const auto candidate = make_block(rng, 64 + 8 * cand);

    // Two in-memory subtractions; select the non-wrapped one per element.
    const auto d_ab = engine.sub(current, candidate);
    const auto stats_ab = engine.last_run();
    const auto d_ba = engine.sub(candidate, current);
    const auto stats_ba = engine.last_run();

    std::uint64_t sad = 0;
    for (std::size_t i = 0; i < current.size(); ++i)
      sad += current[i] >= candidate[i] ? d_ab[i] : d_ba[i];

    const std::uint64_t ref = sad_reference(current, candidate);
    std::printf("%-10d %-12llu %-12llu %-12llu %-10.2f %s\n", cand,
                (unsigned long long)sad, (unsigned long long)ref,
                (unsigned long long)(stats_ab.elapsed_cycles + stats_ba.elapsed_cycles),
                in_pJ(stats_ab.energy) + in_pJ(stats_ba.energy),
                sad == ref ? "" : "<-- MISMATCH");
    if (sad < best) {
      best = sad;
      best_idx = cand;
    }
  }

  std::printf("\nbest match: candidate %d (SAD %llu)\n", best_idx, (unsigned long long)best);
  std::printf("each 256-pixel SAD ran as %zu-wide SUB layers in-memory (2 cycles per\n"
              "row-pair, Table 1), with only the |.| select and accumulate on the host.\n",
              engine.words_per_row() * memory.macro_count());
  return 0;
}
