// Quantised NN inference with reconfigurable precision -- the workload the
// paper's introduction motivates. One fully-connected layer runs at 8-, 4-
// and 2-bit weight/activation precision on the SAME in-memory hardware,
// trading output fidelity for energy (Fig 6's reconfiguration).
//
//   $ ./quantized_nn

#include <cmath>
#include <cstdio>

#include "app/nn.hpp"
#include "common/rng.hpp"

using namespace bpim;

int main() {
  // A 16-neuron layer over 96 inputs with smooth synthetic weights.
  const std::size_t in = 96, out = 16;
  Rng rng(7);
  std::vector<std::vector<double>> weights(out, std::vector<double>(in));
  for (std::size_t j = 0; j < out; ++j)
    for (std::size_t i = 0; i < in; ++i)
      weights[j][i] = 0.5 + 0.5 * std::sin(0.1 * static_cast<double>(i * (j + 1)));
  std::vector<double> x(in);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  macro::ImcMemory memory;

  // High-precision reference for the accuracy column.
  app::QuantizedLinear ref_layer(weights, 8);
  const auto y_ref = ref_layer.forward_reference(x);

  std::printf("fully-connected layer %zu -> %zu on the 128 KB IMC memory\n\n", in, out);
  std::printf("%-9s %-14s %-12s %-14s %-16s\n", "precision", "energy [pJ]", "cycles",
              "rel. error", "energy vs 8-bit");

  double e8 = 0.0;
  for (const unsigned bits : {8u, 4u, 2u}) {
    app::QuantizedLinear layer(weights, bits);
    const auto y = layer.forward(memory, x);
    const auto& st = layer.last_stats();

    double err = 0.0, norm = 0.0;
    for (std::size_t j = 0; j < out; ++j) {
      err += std::abs(y[j] - y_ref[j]);
      norm += std::abs(y_ref[j]);
    }
    const double e_pj = in_pJ(st.energy);
    if (bits == 8) e8 = e_pj;
    std::printf("%-9u %-14.2f %-12llu %-14.3f %-16s\n", bits, e_pj,
                (unsigned long long)st.cycles, err / norm,
                bits == 8 ? "1.00x" : [&] {
                  static char buf[16];
                  std::snprintf(buf, sizeof buf, "%.2fx", e_pj / e8);
                  return buf;
                }());
  }

  std::printf("\nLower precision runs on the same macros with more parallel units per row\n"
              "and proportionally less energy -- the utilisation argument for the paper's\n"
              "2/4/8-bit reconfigurable datapath.\n");
  return 0;
}
