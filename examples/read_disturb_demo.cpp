// Read-disturb demonstration: why bit-line computing needs protection, and
// what each scheme costs.
//
// Three macros run the same 500 dual-WL compute cycles on complementary
// data (the worst case for the Fig-1 disturb mechanism):
//   * full-swing long WL (no protection)  -> wholesale corruption, fast;
//   * WLUD 0.55 V (conventional assist)   -> rare flips, slow cycles;
//   * short WL + BL boost (the paper)     -> no flips, fast cycles.
//
//   $ ./read_disturb_demo

#include <cstdio>

#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;
using macro::WlScheme;

namespace {

struct Outcome {
  std::uint64_t flips;
  double fmax_ghz;
  bool data_intact;
};

Outcome stress(WlScheme scheme) {
  macro::MacroConfig cfg;
  cfg.wl_scheme = scheme;
  cfg.inject_disturb = true;
  cfg.seed = 1234;
  macro::ImcMacro m(cfg);

  BitVector ones(m.cols());
  ones.fill(true);
  const BitVector zeros(m.cols());
  m.poke_row(0, ones);   // every column holds complementary data: maximum
  m.poke_row(1, zeros);  // number of disturb victims per compute

  for (int i = 0; i < 500; ++i)
    m.logic_rows(periph::LogicFn::And, RowRef::main(0), RowRef::main(1));

  return Outcome{m.disturb_flips(), in_GHz(m.fmax()),
                 m.peek_row(0) == ones && m.peek_row(1) == zeros};
}

}  // namespace

int main() {
  std::printf("500 dual-WL compute cycles on fully complementary rows (worst case)\n\n");
  std::printf("%-28s %-14s %-12s %-12s\n", "scheme", "cell flips", "data intact",
              "fmax [GHz]");

  const struct {
    WlScheme scheme;
    const char* name;
  } cases[] = {
      {WlScheme::FullSwingLong, "full-swing long WL"},
      {WlScheme::Wlud, "WLUD 0.55 V (conventional)"},
      {WlScheme::ShortPulseBoost, "short WL + BL boost (paper)"},
  };
  for (const auto& c : cases) {
    const Outcome o = stress(c.scheme);
    std::printf("%-28s %-14llu %-12s %-12.2f\n", c.name, (unsigned long long)o.flips,
                o.data_intact ? "yes" : "NO", o.fmax_ghz);
  }

  std::printf(
      "\nThe unprotected scheme is fast but destroys the operands it reads; WLUD\n"
      "protects the cells by under-driving the access devices and pays ~4x in\n"
      "cycle time; the paper's short full-swing pulse plus BL boosting keeps both\n"
      "the data and the clock frequency.\n");
  return 0;
}
