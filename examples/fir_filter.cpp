// Streaming FIR filter on the IMC memory -- the "real-time streaming
// processing" workload class from the paper's introduction.
//
//   $ ./fir_filter
//
// A 9-tap signed low-pass filter runs over a noisy signal; every
// multiply-accumulate's multiplication happens in-memory.

#include <cmath>
#include <cstdio>

#include "app/fir.hpp"
#include "common/rng.hpp"

using namespace bpim;

int main() {
  // Symmetric low-pass taps (signed, 8-bit range).
  app::FirFilter filter({2, 6, 12, 18, 20, 18, 12, 6, 2}, 8);

  // Noisy two-tone test signal in the signed 8-bit range.
  Rng rng(11);
  const std::size_t n = 512;
  std::vector<std::int64_t> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    const double clean = 40.0 * std::sin(2.0 * 3.14159265 * t / 64.0);
    const double noise = 25.0 * std::sin(2.0 * 3.14159265 * t / 3.1);
    x[i] = static_cast<std::int64_t>(clean + noise + rng.normal(0.0, 4.0));
    x[i] = std::max<std::int64_t>(-128, std::min<std::int64_t>(127, x[i]));
  }

  macro::ImcMemory memory;
  const auto y = filter.apply(memory, x);
  const auto ref = filter.apply_reference(x);

  bool match = true;
  for (std::size_t i = 0; i < n; ++i) match &= (y[i] == ref[i]);

  // Residual high-frequency energy before/after (crude stopband check).
  auto hf_energy = [](const std::vector<std::int64_t>& s) {
    double e = 0.0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      const double d = static_cast<double>(s[i] - s[i - 1]);
      e += d * d;
    }
    return e;
  };
  // Normalise by the filter's DC gain (sum of taps = 96).
  const double gain = 96.0;
  const double hf_in = hf_energy(x);
  const double hf_out = hf_energy(y) / (gain * gain);

  const auto& st = filter.last_stats();
  std::printf("9-tap FIR over %zu samples (8-bit signed)\n\n", n);
  std::printf("bit-exact vs reference : %s\n", match ? "yes" : "NO");
  std::printf("high-freq energy       : %.0f -> %.0f (x%.2f, gain-normalised)\n", hf_in,
              hf_out, hf_out / hf_in);
  std::printf("in-memory MACs         : %llu\n", (unsigned long long)st.macs);
  std::printf("IMC cycles             : %llu\n", (unsigned long long)st.cycles);
  std::printf("IMC energy             : %.2f pJ (%.1f fJ/MAC)\n", in_pJ(st.energy),
              in_fJ(st.energy) / static_cast<double>(st.macs));
  return match ? 0 : 1;
}
