// Dot product on the 128 KB IMC memory: in-memory 8-bit multiplies across
// all 64 macros in lock-step, host-side accumulation of the 16-bit partial
// products (the usual macro/accelerator split).
//
//   $ ./dot_product [length]

#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "app/vector_engine.hpp"
#include "common/rng.hpp"

using namespace bpim;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;

  Rng rng(2024);
  std::vector<std::uint64_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.next_u64() & 0xFF;
    b[i] = rng.next_u64() & 0xFF;
  }

  macro::ImcMemory memory;  // 4 banks x 16 macros = 128 KB
  app::VectorEngine engine(memory, /*bits=*/8);

  std::printf("dot product of two %zu-element 8-bit vectors\n", n);
  std::printf("memory: %zu macros, %zu KB, %zu multiplies per lock-step layer\n\n",
              memory.macro_count(), memory.capacity_bytes() / 1024,
              engine.mult_units_per_row() * memory.macro_count());

  const auto products = engine.mult(a, b);
  const std::uint64_t dot_imc = std::accumulate(products.begin(), products.end(), 0ull);

  std::uint64_t dot_ref = 0;
  for (std::size_t i = 0; i < n; ++i) dot_ref += a[i] * b[i];

  const auto& run = engine.last_run();
  std::printf("IMC result   : %llu\n", (unsigned long long)dot_imc);
  std::printf("reference    : %llu  (%s)\n", (unsigned long long)dot_ref,
              dot_imc == dot_ref ? "MATCH" : "MISMATCH");
  std::printf("cycles       : %llu (%.4f cycles/multiply)\n",
              (unsigned long long)run.elapsed_cycles, run.cycles_per_element());
  std::printf("energy       : %.2f pJ (%.1f fJ/multiply)\n", in_pJ(run.energy),
              in_fJ(run.energy_per_element()));
  std::printf("elapsed      : %.1f ns at fmax -> %.1f G-MAC/s equivalent\n",
              in_ns(run.elapsed_time),
              static_cast<double>(n) / run.elapsed_time.si() * 1e-9);
  return dot_imc == dot_ref ? 0 : 1;
}
