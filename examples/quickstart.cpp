// Quickstart: one macro, every operation class, cycles and energy.
//
//   $ ./quickstart
//
// Walks the public API end to end: load words, run logic / ADD / SUB /
// MULT at 8-bit precision, read results back, inspect per-op cost.

#include <cstdio>

#include "macro/imc_macro.hpp"

using namespace bpim;
using array::RowRef;
using macro::ImcMacro;
using macro::Op;

int main() {
  // A single 128x128 bit-parallel IMC macro at 0.9 V, BL separator on.
  ImcMacro macro{macro::MacroConfig{}};

  // Operands of a dual-WL op live in the same columns of two rows.
  // Row 0, word 0 <- 25; row 1, word 0 <- 17 (8-bit words).
  macro.poke_word(0, 0, 8, 25);
  macro.poke_word(1, 0, 8, 17);

  std::printf("bit-parallel 6T SRAM IMC macro: %zux%zu, fmax %.2f GHz @ %.1f V\n\n",
              macro.rows(), macro.cols(), in_GHz(macro.fmax()),
              macro.config().vdd.si());

  // --- logic (1 cycle) ------------------------------------------------------
  const BitVector x = macro.logic_rows(periph::LogicFn::Xor, RowRef::main(0), RowRef::main(1));
  std::printf("XOR   : 25 ^ 17 = %2llu   (%u cycle, %5.1f fJ/row-op)\n",
              (unsigned long long)(x.to_u64() & 0xFF), macro.last_op().cycles,
              in_fJ(macro.last_op().op_energy));

  // --- ADD (1 cycle, bit-parallel carry-select chain) -----------------------
  const BitVector s = macro.add_rows(RowRef::main(0), RowRef::main(1), 8);
  std::printf("ADD   : 25 + 17 = %2llu   (%u cycle, %5.1f fJ/row-op)\n",
              (unsigned long long)(s.to_u64() & 0xFF), macro.last_op().cycles,
              in_fJ(macro.last_op().op_energy));

  // --- SUB (2 cycles: NOT -> dummy row, then ADD with carry-in) -------------
  const BitVector d = macro.sub_rows(RowRef::main(0), RowRef::main(1), 8);
  std::printf("SUB   : 25 - 17 = %2llu   (%u cycles, %5.1f fJ/row-op)\n",
              (unsigned long long)(d.to_u64() & 0xFF), macro.last_op().cycles,
              in_fJ(macro.last_op().op_energy));

  // --- MULT (N+2 cycles, Fig 5's add-and-shift loop on 2N-bit units) --------
  macro.poke_mult_operand(2, 0, 8, 25);
  macro.poke_mult_operand(3, 0, 8, 17);
  const BitVector p = macro.mult_rows(RowRef::main(2), RowRef::main(3), 8);
  std::printf("MULT  : 25 * 17 = %3llu  (%u cycles, %5.1f fJ/row-op)\n",
              (unsigned long long)macro.peek_mult_product(p, 0, 8), macro.last_op().cycles,
              in_fJ(macro.last_op().op_energy));

  // --- single-WL ops ---------------------------------------------------------
  macro.unary_row(Op::Shift, RowRef::main(0), RowRef::dummy(0), 8);
  std::printf("SHIFT : 25 << 1 = %2llu   (%u cycle)\n",
              (unsigned long long)(macro.sram().row(RowRef::dummy(0)).to_u64() & 0xFF),
              macro.last_op().cycles);

  std::printf("\nwhole session: %llu cycles, %.2f pJ, %.2f ns at fmax\n",
              (unsigned long long)macro.total_cycles(), in_pJ(macro.total_energy()),
              in_ns(macro.cycle_time()) * static_cast<double>(macro.total_cycles()));
  std::printf("(every op above also processed the other %zu words of its rows in parallel)\n",
              macro.words_per_row(8) - 1);
  return 0;
}
