// Mixed-precision MLP inference -- per-layer precision reconfiguration on
// one IMC memory, the deployment scenario behind the paper's 2/4/8-bit
// datapath: keep the input layer at 8 bits, drop hidden layers to 4/2.
//
//   $ ./mixed_precision_mlp

#include <cmath>
#include <cstdio>

#include "app/mlp.hpp"
#include "common/rng.hpp"

using namespace bpim;

namespace {

std::vector<std::vector<double>> rand_w(std::size_t out, std::size_t in, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> w(out, std::vector<double>(in));
  for (auto& row : w)
    for (auto& x : row) x = rng.uniform(0.0, 1.0);
  return w;
}

double l1_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0, n = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d += std::abs(a[i] - b[i]);
    n += std::abs(b[i]);
  }
  return n > 0.0 ? d / n : 0.0;
}

}  // namespace

int main() {
  // 3-layer MLP: 64 -> 32 -> 16 -> 8.
  const auto w1 = rand_w(32, 64, 1), w2 = rand_w(16, 32, 2), w3 = rand_w(8, 16, 3);
  Rng rng(4);
  std::vector<double> x(64);
  for (auto& v : x) v = rng.uniform(0.0, 1.0);

  macro::ImcMemory memory;

  app::Mlp full({{w1, 8}, {w2, 8}, {w3, 8}});
  const auto y_full = full.forward(memory, x);
  const double e_full = in_pJ(full.last_stats().energy);

  std::printf("3-layer MLP (64-32-16-8) on the 128 KB IMC memory\n\n");
  std::printf("%-22s %-12s %-12s %-14s %-12s\n", "precision per layer", "energy [pJ]",
              "cycles", "vs 8/8/8", "output drift");

  const struct {
    const char* name;
    unsigned b1, b2, b3;
  } configs[] = {
      {"8 / 8 / 8", 8, 8, 8},
      {"8 / 4 / 4", 8, 4, 4},
      {"8 / 4 / 2", 8, 4, 2},
      {"4 / 4 / 4", 4, 4, 4},
      {"2 / 2 / 2", 2, 2, 2},
  };
  for (const auto& c : configs) {
    app::Mlp net({{w1, c.b1}, {w2, c.b2}, {w3, c.b3}});
    const auto y = net.forward(memory, x);
    const auto& st = net.last_stats();
    char rel[16];
    std::snprintf(rel, sizeof rel, "%.2fx", in_pJ(st.energy) / e_full);
    std::printf("%-22s %-12.2f %-12llu %-14s %-12.4f\n", c.name, in_pJ(st.energy),
                (unsigned long long)st.cycles, rel, l1_dist(y, y_full));
  }

  std::printf("\nPer-layer stats of the 8/4/2 configuration:\n");
  app::Mlp mixed({{w1, 8}, {w2, 4}, {w3, 2}});
  (void)mixed.forward(memory, x);
  for (std::size_t l = 0; l < mixed.layer_stats().size(); ++l) {
    const auto& s = mixed.layer_stats()[l];
    std::printf("  layer %zu: %6llu MACs  %4llu cycles  %8.2f pJ\n", l + 1,
                (unsigned long long)s.macs, (unsigned long long)s.cycles, in_pJ(s.energy));
  }
  std::printf("\nThe same macros serve every configuration -- only the MX3 carry-chain\n"
              "segmentation and the unit mapping change (paper Fig 6).\n");
  return 0;
}
